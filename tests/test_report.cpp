// JSON layer and bench-report schema:
//   * json::Value writer/parser round-trip, including string escaping and
//     exact uint64 numbers beyond 2^53;
//   * validate_report over in-process BenchReport documents;
//   * golden-file check: spawn a real bench binary (fig5_fences) with tiny
//     parameters and validate the BENCH_*.json it writes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/report.hpp"
#include "svc/resilience.hpp"  // StatusCounts for the v6 row tests

namespace {

using mp::obs::BenchReport;
using mp::obs::validate_report;
namespace json = mp::obs::json;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JsonTest, RoundTripPreservesStructureAndExactIntegers) {
  json::Value doc = json::Value::object();
  doc["u64"] = std::uint64_t{9223372036854775809ull};  // > 2^53 and > 2^63-1
  doc["pi"] = 3.25;
  doc["yes"] = true;
  doc["nothing"] = nullptr;
  doc["name"] = "marginptr";
  json::Value arr = json::Value::array();
  arr.push_back(std::uint64_t{1});
  arr.push_back("two");
  doc["list"] = arr;

  for (const int indent : {0, 2}) {
    const json::Value parsed = json::parse(doc.dump(indent));
    EXPECT_EQ(parsed.find("u64")->as_uint(), 9223372036854775809ull)
        << "uint64 must round-trip exactly, not via double";
    EXPECT_DOUBLE_EQ(parsed.find("pi")->as_double(), 3.25);
    EXPECT_TRUE(parsed.find("yes")->as_bool());
    EXPECT_TRUE(parsed.find("nothing")->is_null());
    EXPECT_EQ(parsed.find("name")->as_string(), "marginptr");
    const auto& list = parsed.find("list")->as_array();
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[0].as_uint(), 1u);
    EXPECT_EQ(list[1].as_string(), "two");
  }
}

TEST(JsonTest, StringEscapingRoundTrips) {
  json::Value doc = json::Value::object();
  const std::string nasty = "quote\" backslash\\ newline\n tab\t bell\x07";
  doc["s"] = nasty;
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\\\""), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\u0007"), std::string::npos);
  EXPECT_EQ(json::parse(text).find("s")->as_string(), nasty);
}

TEST(JsonTest, ParserRejectsGarbage) {
  EXPECT_THROW(json::parse("{\"unterminated\": "), std::runtime_error);
  EXPECT_THROW(json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json::parse("nulll"), std::runtime_error);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  json::Value doc = json::Value::object();
  doc["z"] = 1;
  doc["a"] = 2;
  const std::string text = doc.dump();
  EXPECT_LT(text.find("\"z\""), text.find("\"a\""));
}

TEST(ReportTest, EmptyReportValidates) {
  BenchReport report("unit_test", "/dev/null");
  EXPECT_EQ(validate_report(report.document()), "");
}

TEST(ReportTest, FullRowValidates) {
  BenchReport report("unit_test", "/dev/null");
  report.config()["size"] = 100;

  mp::smr::StatsSnapshot stats;
  stats.retires = 7;
  json::Value row = json::Value::object();
  row["figure"] = "fig0";
  row["scheme"] = "MP";
  row["stats"] = mp::obs::to_json(stats);
  row["waste"] = mp::obs::waste_json(1234, stats.peak_retired);
  mp::obs::LatencyHistogram hist;
  hist.record(100);
  json::Value latency = json::Value::object();
  latency["contains"] = mp::obs::to_json(hist);
  row["latency_ns"] = latency;
  report.add_row(std::move(row));

  const json::Value doc = report.document();
  EXPECT_EQ(validate_report(doc), "");
  // And the serialized form parses back to a valid document.
  EXPECT_EQ(validate_report(json::parse(doc.dump(2))), "");
}

TEST(ReportTest, VersionOneDocumentsStillValidate) {
  // v1 reports predate the thread-lifecycle counters: their stats objects
  // carry no orphaned/adopted, and the validator must keep accepting them
  // so the perf trajectory stays parseable across the schema bump.
  json::Value stats = json::Value::object();
  for (const char* key : {"fences", "reads", "allocs", "retires", "reclaims",
                          "drained", "empties", "peak_retired",
                          "emergency_empties"}) {
    stats[key] = 1;
  }
  json::Value row = json::Value::object();
  row["figure"] = "fig0";
  row["scheme"] = "MP";
  row["stats"] = stats;
  json::Value rows = json::Value::array();
  rows.push_back(row);
  json::Value doc = json::Value::object();
  doc["schema"] = mp::obs::kReportSchema;
  doc["version"] = std::uint64_t{1};
  doc["bench"] = "legacy";
  doc["config"] = json::Value::object();
  doc["rows"] = rows;
  EXPECT_EQ(validate_report(doc), "");

  // The same stats object under the current version must be rejected:
  // current emitters always include the lifecycle counters.
  doc["version"] = mp::obs::kReportVersion;
  EXPECT_NE(validate_report(doc), "");

  // And versions beyond the writer's are unsupported.
  doc["version"] = mp::obs::kReportVersion + 1;
  EXPECT_NE(validate_report(doc), "");
}

TEST(ReportTest, VersionTwoDocumentsStillValidate) {
  // v2 reports carry the lifecycle counters but predate the node-pool
  // counters; they must keep validating under v2 and be rejected if they
  // claim v3.
  json::Value stats = json::Value::object();
  for (const char* key : {"fences", "reads", "allocs", "retires", "reclaims",
                          "drained", "empties", "peak_retired",
                          "emergency_empties", "orphaned", "adopted"}) {
    stats[key] = 1;
  }
  json::Value row = json::Value::object();
  row["figure"] = "fig0";
  row["scheme"] = "MP";
  row["stats"] = stats;
  json::Value rows = json::Value::array();
  rows.push_back(row);
  json::Value doc = json::Value::object();
  doc["schema"] = mp::obs::kReportSchema;
  doc["version"] = std::uint64_t{2};
  doc["bench"] = "legacy";
  doc["config"] = json::Value::object();
  doc["rows"] = rows;
  EXPECT_EQ(validate_report(doc), "");

  // A v3 document without the pool counters is malformed.
  doc["version"] = std::uint64_t{3};
  EXPECT_NE(validate_report(doc), "");
}

TEST(ReportTest, VersionThreeDocumentsStillValidate) {
  // v3 reports carry the pool counters but predate the background-
  // reclamation counters; they must keep validating under v3 and be
  // rejected if they claim v4.
  json::Value stats = json::Value::object();
  for (const char* key : {"fences", "reads", "allocs", "retires", "reclaims",
                          "drained", "empties", "peak_retired",
                          "emergency_empties", "orphaned", "adopted",
                          "pool_hits", "pool_misses", "depot_exchanges",
                          "unlinked_frees"}) {
    stats[key] = 1;
  }
  json::Value row = json::Value::object();
  row["figure"] = "fig0";
  row["scheme"] = "MP";
  row["stats"] = stats;
  json::Value rows = json::Value::array();
  rows.push_back(row);
  json::Value doc = json::Value::object();
  doc["schema"] = mp::obs::kReportSchema;
  doc["version"] = std::uint64_t{3};
  doc["bench"] = "legacy";
  doc["config"] = json::Value::object();
  doc["rows"] = rows;
  EXPECT_EQ(validate_report(doc), "");

  // A v4 document without the background-reclamation counters is malformed.
  doc["version"] = std::uint64_t{4};
  EXPECT_NE(validate_report(doc), "");
}

TEST(ReportTest, VersionFourDocumentsStillValidate) {
  // v4 reports carry the background-reclamation counters but predate the
  // service layer (v5's "shards"/"slo" rows). They must keep validating —
  // and a v4 document may not smuggle in v5-only row sections.
  json::Value stats = json::Value::object();
  for (const char* key : {"fences", "reads", "allocs", "retires", "reclaims",
                          "drained", "empties", "peak_retired",
                          "emergency_empties", "orphaned", "adopted",
                          "pool_hits", "pool_misses", "depot_exchanges",
                          "unlinked_frees", "offloaded", "inline_fallbacks",
                          "bg_snapshots", "bg_scans", "peak_inflight"}) {
    stats[key] = 1;
  }
  json::Value row = json::Value::object();
  row["figure"] = "fig0";
  row["scheme"] = "MP";
  row["stats"] = stats;
  json::Value rows = json::Value::array();
  rows.push_back(row);
  json::Value doc = json::Value::object();
  doc["schema"] = mp::obs::kReportSchema;
  doc["version"] = std::uint64_t{4};
  doc["bench"] = "legacy";
  doc["config"] = json::Value::object();
  doc["rows"] = rows;
  EXPECT_EQ(validate_report(doc), "");

  // "shards" is a v5 construct: a v4 document carrying one is malformed.
  json::Value shard_row = row;
  json::Value shards = json::Value::array();
  shards.push_back(mp::obs::shard_json(0, mp::smr::StatsSnapshot{}, 100));
  shard_row["shards"] = shards;
  json::Value bad_rows = json::Value::array();
  bad_rows.push_back(shard_row);
  doc["rows"] = bad_rows;
  EXPECT_NE(validate_report(doc), "");
  doc["version"] = std::uint64_t{5};
  EXPECT_EQ(validate_report(doc), "");
}

TEST(ReportTest, VersionFiveShardAndSloRowsValidate) {
  BenchReport report("svc_unit", "/dev/null");
  mp::smr::StatsSnapshot stats;
  stats.retires = 3;
  json::Value row = json::Value::object();
  row["figure"] = "svc_closed_loop";
  row["scheme"] = "EBR";
  row["stats"] = mp::obs::to_json(stats);
  json::Value shards = json::Value::array();
  for (std::size_t s = 0; s < 4; ++s) {
    shards.push_back(mp::obs::shard_json(s, stats, 1234));
  }
  row["shards"] = shards;
  json::Value slo = json::Value::object();
  slo["p99_slo_ns"] = std::uint64_t{2000000};
  slo["met"] = true;
  row["slo"] = slo;
  report.add_row(std::move(row));
  const json::Value doc = report.document();
  EXPECT_EQ(validate_report(doc), "");
  EXPECT_EQ(validate_report(json::parse(doc.dump(2))), "");
}

TEST(ReportTest, VersionFiveDocumentsStillValidate) {
  // v5 reports carry shards/slo rows but predate the resilience layer
  // (v6's "status_counts" row section and per-shard "health"). They must
  // keep validating — and a v5 document may not smuggle in v6 sections.
  mp::smr::StatsSnapshot stats;
  json::Value row = json::Value::object();
  row["figure"] = "svc_closed_loop";
  row["scheme"] = "EBR";
  row["stats"] = mp::obs::to_json(stats);
  json::Value shards = json::Value::array();
  shards.push_back(mp::obs::shard_json(0, stats, 100));
  row["shards"] = shards;
  json::Value rows = json::Value::array();
  rows.push_back(row);
  json::Value doc = json::Value::object();
  doc["schema"] = mp::obs::kReportSchema;
  doc["version"] = std::uint64_t{5};
  doc["bench"] = "legacy";
  doc["config"] = json::Value::object();
  doc["rows"] = rows;
  EXPECT_EQ(validate_report(doc), "");

  // "status_counts" is a v6 construct: a v5 document carrying one is
  // malformed; the same document claiming v6 validates.
  json::Value v6_row = row;
  v6_row["status_counts"] = mp::obs::status_counts_json(mp::svc::StatusCounts{});
  json::Value v6_rows = json::Value::array();
  v6_rows.push_back(v6_row);
  doc["rows"] = v6_rows;
  EXPECT_NE(validate_report(doc), "");
  doc["version"] = std::uint64_t{6};
  EXPECT_EQ(validate_report(doc), "");

  // Likewise a per-shard "health" object.
  json::Value shard_entry = mp::obs::shard_json(0, stats, 100);
  shard_entry["health"] = mp::obs::health_json("healthy", 0, 0, 0);
  json::Value health_shards = json::Value::array();
  health_shards.push_back(shard_entry);
  json::Value health_row = row;
  health_row["shards"] = health_shards;
  json::Value health_rows = json::Value::array();
  health_rows.push_back(health_row);
  doc["rows"] = health_rows;
  doc["version"] = std::uint64_t{5};
  EXPECT_NE(validate_report(doc), "");
  doc["version"] = std::uint64_t{6};
  EXPECT_EQ(validate_report(doc), "");
}

TEST(ReportTest, VersionSixStatusCountsAndHealthRoundTrip) {
  BenchReport report("svc_resilience_unit", "/dev/null");
  mp::svc::StatusCounts counts;
  counts.ok = 10;
  counts.rejected = 3;
  counts.shed_write = 1;
  json::Value row = json::Value::object();
  row["figure"] = "svc_overload";
  row["scheme"] = "EBR";
  row["stats"] = mp::obs::to_json(mp::smr::StatsSnapshot{});
  row["status_counts"] = mp::obs::status_counts_json(counts);
  json::Value shards = json::Value::array();
  json::Value entry = mp::obs::shard_json(0, mp::smr::StatsSnapshot{}, 100);
  entry["health"] = mp::obs::health_json("degraded", 2, 1, 1);
  shards.push_back(entry);
  row["shards"] = shards;
  report.add_row(std::move(row));

  const json::Value doc = report.document();
  EXPECT_EQ(doc.find("version")->as_uint(), mp::obs::kReportVersion);
  EXPECT_EQ(validate_report(doc), "");
  // The serialized form parses back to a valid document with the tallies
  // intact.
  const json::Value parsed = json::parse(doc.dump(2));
  EXPECT_EQ(validate_report(parsed), "");
  const json::Value* round =
      parsed.find("rows")->as_array()[0].find("status_counts");
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->find("ok")->as_uint(), 10u);
  EXPECT_EQ(round->find("rejected")->as_uint(), 3u);
  EXPECT_EQ(round->find("shed_write")->as_uint(), 1u);
  const json::Value* health =
      parsed.find("rows")->as_array()[0].find("shards")->as_array()[0].find(
          "health");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->find("state")->as_string(), "degraded");
  EXPECT_EQ(health->find("degraded_enters")->as_uint(), 2u);
}

TEST(ReportTest, VersionSixDocumentsStillValidate) {
  // v6 reports predate deamortization (v7's scan_increments /
  // cursor_carryover / max_pause_ns stats counters and the histogram
  // "p100" alias). They must keep validating as v6 — and be rejected if
  // they claim v7 without the new fields.
  json::Value stats = json::Value::object();
  for (const char* key :
       {"fences", "reads", "allocs", "retires", "reclaims", "drained",
        "empties", "peak_retired", "emergency_empties", "orphaned",
        "adopted", "pool_hits", "pool_misses", "depot_exchanges",
        "unlinked_frees", "offloaded", "inline_fallbacks", "bg_snapshots",
        "bg_scans", "peak_inflight"}) {
    stats[key] = std::uint64_t{1};
  }
  json::Value hist = json::Value::object();
  for (const char* key :
       {"count", "mean", "max", "p50", "p90", "p99", "p999"}) {
    hist[key] = std::uint64_t{1};  // no "p100": a v6 writer never emits it
  }
  json::Value latency = json::Value::object();
  latency["contains"] = hist;
  json::Value row = json::Value::object();
  row["figure"] = "fig0";
  row["scheme"] = "MP";
  row["stats"] = stats;
  row["latency_ns"] = latency;
  json::Value rows = json::Value::array();
  rows.push_back(row);
  json::Value doc = json::Value::object();
  doc["schema"] = mp::obs::kReportSchema;
  doc["version"] = std::uint64_t{6};
  doc["bench"] = "legacy";
  doc["config"] = json::Value::object();
  doc["rows"] = rows;
  EXPECT_EQ(validate_report(doc), "");

  // The same document claiming v7 lacks the bounded-increment counters.
  doc["version"] = std::uint64_t{7};
  EXPECT_NE(validate_report(doc), "");
}

TEST(ReportTest, VersionSevenTailFieldsRoundTrip) {
  // A current report carries the deamortization counters, the scan_quantum
  // config arm, and per-histogram p100 — and survives a serialize/parse
  // round trip with the tail fields intact.
  BenchReport report("latency_pauses_unit", "/dev/null");
  mp::smr::Config config;
  config.scan_quantum = 32;
  report.config()["smr"] = mp::obs::to_json(config);

  mp::smr::StatsSnapshot stats;
  stats.scan_increments = 17;
  stats.cursor_carryover = 5;
  stats.max_pause_ns = 12345;
  mp::obs::LatencyHistogram hist;
  hist.record(100);
  hist.record(90000);
  json::Value latency = json::Value::object();
  latency["get"] = mp::obs::to_json(hist);
  json::Value row = json::Value::object();
  row["figure"] = "pause_ab";
  row["scheme"] = "MP";
  row["stats"] = mp::obs::to_json(stats);
  row["latency_ns"] = latency;
  report.add_row(std::move(row));

  const json::Value doc = report.document();
  EXPECT_EQ(doc.find("version")->as_uint(), mp::obs::kReportVersion);
  EXPECT_EQ(validate_report(doc), "");
  const json::Value parsed = json::parse(doc.dump(2));
  EXPECT_EQ(validate_report(parsed), "");
  const json::Value& round = parsed.find("rows")->as_array()[0];
  EXPECT_EQ(round.find("stats")->find("scan_increments")->as_uint(), 17u);
  EXPECT_EQ(round.find("stats")->find("cursor_carryover")->as_uint(), 5u);
  EXPECT_EQ(round.find("stats")->find("max_pause_ns")->as_uint(), 12345u);
  const json::Value* get_hist = round.find("latency_ns")->find("get");
  ASSERT_NE(get_hist, nullptr);
  // p100 is an alias of max, pinned equal by construction.
  EXPECT_EQ(get_hist->find("p100")->as_uint(),
            get_hist->find("max")->as_uint());
  EXPECT_EQ(parsed.find("config")
                ->find("smr")
                ->find("scan_quantum")
                ->as_uint(),
            32u);
}

TEST(ReportTest, ValidatorFlagsMissingTailFieldsAtVersionSeven) {
  const auto make_doc = [](json::Value row) {
    json::Value rows = json::Value::array();
    rows.push_back(std::move(row));
    json::Value doc = json::Value::object();
    doc["schema"] = mp::obs::kReportSchema;
    doc["version"] = std::uint64_t{7};
    doc["bench"] = "pause_unit";
    doc["config"] = json::Value::object();
    doc["rows"] = rows;
    return doc;
  };

  {  // a stats object without one of the new counters
    json::Value stats = mp::obs::to_json(mp::smr::StatsSnapshot{});
    json::Value pruned = json::Value::object();
    for (const auto& [key, value] : stats.as_object()) {
      if (std::string(key) != "max_pause_ns") pruned[key] = value;
    }
    json::Value row = json::Value::object();
    row["figure"] = "pause_ab";
    row["scheme"] = "MP";
    row["stats"] = pruned;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // a histogram without p100
    json::Value hist = json::Value::object();
    for (const char* key :
         {"count", "mean", "max", "p50", "p90", "p99", "p999"}) {
      hist[key] = std::uint64_t{1};
    }
    json::Value latency = json::Value::object();
    latency["get"] = hist;
    json::Value row = json::Value::object();
    row["figure"] = "pause_ab";
    row["scheme"] = "MP";
    row["latency_ns"] = latency;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // p100 present but non-numeric
    json::Value hist = mp::obs::to_json(mp::obs::LatencyHistogram{});
    hist["p100"] = "huge";
    json::Value latency = json::Value::object();
    latency["tail"] = hist;
    json::Value row = json::Value::object();
    row["figure"] = "pause_ab";
    row["scheme"] = "MP";
    row["latency_ns"] = latency;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
}

TEST(ReportTest, VersionEightCapabilityFlags) {
  // v8: rows may carry the scheme's compile-time capability flags
  // (capability-split API, DESIGN.md §13). Earlier writers never emit
  // them, so their presence requires the version; when present all three
  // flags must be booleans.
  const auto make_doc = [](json::Value row, std::uint64_t version) {
    json::Value rows = json::Value::array();
    rows.push_back(std::move(row));
    json::Value doc = json::Value::object();
    doc["schema"] = mp::obs::kReportSchema;
    doc["version"] = version;
    doc["bench"] = "caps_unit";
    doc["config"] = json::Value::object();
    doc["rows"] = rows;
    return doc;
  };
  json::Value caps = json::Value::object();
  caps["snapshot_free"] = true;
  caps["bounded_waste"] = false;
  caps["robust"] = false;
  json::Value row = json::Value::object();
  row["figure"] = "fig4";
  row["scheme"] = "Hyaline";
  row["capabilities"] = caps;

  EXPECT_EQ(validate_report(make_doc(row, 8)), "");
  const json::Value parsed = json::parse(make_doc(row, 8).dump(2));
  EXPECT_EQ(validate_report(parsed), "");
  const json::Value& round = parsed.find("rows")->as_array()[0];
  EXPECT_TRUE(round.find("capabilities")->find("snapshot_free")->as_bool());
  EXPECT_FALSE(round.find("capabilities")->find("bounded_waste")->as_bool());

  // A document claiming v7 must not carry them.
  EXPECT_NE(validate_report(make_doc(row, 7)), "");
  {  // capabilities must be an object
    json::Value bad = row;
    bad["capabilities"] = json::Value::array();
    EXPECT_NE(validate_report(make_doc(bad, 8)), "");
  }
  {  // missing one of the three flags
    json::Value pruned = json::Value::object();
    pruned["snapshot_free"] = true;
    pruned["bounded_waste"] = false;  // no "robust"
    json::Value bad = row;
    bad["capabilities"] = pruned;
    EXPECT_NE(validate_report(make_doc(bad, 8)), "");
  }
  {  // a flag that is not a boolean
    json::Value nonbool = caps;
    nonbool["robust"] = std::uint64_t{1};
    json::Value bad = row;
    bad["capabilities"] = nonbool;
    EXPECT_NE(validate_report(make_doc(bad, 8)), "");
  }
}

TEST(ReportTest, ValidatorFlagsMalformedStatusCountsAndHealth) {
  const auto make_doc = [](json::Value row) {
    json::Value rows = json::Value::array();
    rows.push_back(std::move(row));
    json::Value doc = json::Value::object();
    doc["schema"] = mp::obs::kReportSchema;
    doc["version"] = std::uint64_t{6};
    doc["bench"] = "svc_unit";
    doc["config"] = json::Value::object();
    doc["rows"] = rows;
    return doc;
  };
  json::Value base = json::Value::object();
  base["figure"] = "svc_overload";
  base["scheme"] = "EBR";

  {  // status_counts must be an object
    json::Value row = base;
    row["status_counts"] = json::Value::array();
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // status_counts missing one of the six tallies
    json::Value counts = json::Value::object();
    for (const char* key :
         {"ok", "not_found", "alloc_failed", "deadline_exceeded",
          "rejected"}) {  // no "shed_write"
      counts[key] = std::uint64_t{0};
    }
    json::Value row = base;
    row["status_counts"] = counts;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // health without a state name
    json::Value health = json::Value::object();
    health["degraded_enters"] = std::uint64_t{0};
    health["shed_enters"] = std::uint64_t{0};
    health["recoveries"] = std::uint64_t{0};
    json::Value entry = mp::obs::shard_json(0, mp::smr::StatsSnapshot{}, 10);
    entry["health"] = health;
    json::Value shards = json::Value::array();
    shards.push_back(entry);
    json::Value row = base;
    row["shards"] = shards;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // health counters must be numeric
    json::Value health = mp::obs::health_json("shedding", 0, 0, 0);
    health["recoveries"] = "many";
    json::Value entry = mp::obs::shard_json(0, mp::smr::StatsSnapshot{}, 10);
    entry["health"] = health;
    json::Value shards = json::Value::array();
    shards.push_back(entry);
    json::Value row = base;
    row["shards"] = shards;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
}

TEST(ReportTest, ValidatorFlagsMalformedShardAndSloSections) {
  const auto make_doc = [](json::Value row) {
    json::Value rows = json::Value::array();
    rows.push_back(std::move(row));
    json::Value doc = json::Value::object();
    doc["schema"] = mp::obs::kReportSchema;
    doc["version"] = mp::obs::kReportVersion;
    doc["bench"] = "svc_unit";
    doc["config"] = json::Value::object();
    doc["rows"] = rows;
    return doc;
  };
  json::Value base = json::Value::object();
  base["figure"] = "svc_closed_loop";
  base["scheme"] = "EBR";

  {  // shards entry without a shard index
    json::Value entry = json::Value::object();
    entry["stats"] = mp::obs::to_json(mp::smr::StatsSnapshot{});
    json::Value shards = json::Value::array();
    shards.push_back(entry);
    json::Value row = base;
    row["shards"] = shards;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // shards entry without stats
    json::Value entry = json::Value::object();
    entry["shard"] = std::uint64_t{0};
    json::Value shards = json::Value::array();
    shards.push_back(entry);
    json::Value row = base;
    row["shards"] = shards;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // shards entry whose stats lack the version's counters
    json::Value entry = json::Value::object();
    entry["shard"] = std::uint64_t{0};
    entry["stats"] = json::Value::object();  // empty counters
    json::Value shards = json::Value::array();
    shards.push_back(entry);
    json::Value row = base;
    row["shards"] = shards;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // shards must be an array
    json::Value row = base;
    row["shards"] = json::Value::object();
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // slo without its target
    json::Value slo = json::Value::object();
    slo["met"] = true;
    json::Value row = base;
    row["slo"] = slo;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
  {  // slo "met" must be a bool
    json::Value slo = json::Value::object();
    slo["p99_slo_ns"] = std::uint64_t{1000};
    slo["met"] = std::uint64_t{1};
    json::Value row = base;
    row["slo"] = slo;
    EXPECT_NE(validate_report(make_doc(row)), "");
  }
}

TEST(ReportTest, CurrentReportsCarryLifecycleCounters) {
  BenchReport report("unit_test", "/dev/null");
  json::Value row = json::Value::object();
  row["figure"] = "fig0";
  row["scheme"] = "EBR";
  row["stats"] = mp::obs::to_json(mp::smr::StatsSnapshot{});
  report.add_row(std::move(row));
  const json::Value doc = report.document();
  EXPECT_EQ(doc.find("version")->as_uint(), mp::obs::kReportVersion);
  const json::Value* stats =
      doc.find("rows")->as_array()[0].find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_NE(stats->find("orphaned"), nullptr);
  EXPECT_NE(stats->find("adopted"), nullptr);
  EXPECT_NE(stats->find("pool_hits"), nullptr);
  EXPECT_NE(stats->find("pool_misses"), nullptr);
  EXPECT_NE(stats->find("depot_exchanges"), nullptr);
  EXPECT_NE(stats->find("unlinked_frees"), nullptr);
  EXPECT_NE(stats->find("offloaded"), nullptr);
  EXPECT_NE(stats->find("inline_fallbacks"), nullptr);
  EXPECT_NE(stats->find("bg_snapshots"), nullptr);
  EXPECT_NE(stats->find("bg_scans"), nullptr);
  EXPECT_NE(stats->find("peak_inflight"), nullptr);
  EXPECT_EQ(validate_report(doc), "");
}

TEST(ReportTest, ValidatorFlagsMissingFields) {
  BenchReport report("unit_test", "/dev/null");
  json::Value row = json::Value::object();
  row["figure"] = "fig0";  // no "scheme"
  report.add_row(std::move(row));
  EXPECT_NE(validate_report(report.document()), "");

  json::Value not_a_report = json::Value::object();
  not_a_report["schema"] = "something-else";
  EXPECT_NE(validate_report(not_a_report), "");
  EXPECT_NE(validate_report(json::Value::array()), "");
}

TEST(ReportTest, UnboundedWasteSerializesAsNullBound) {
  const json::Value waste = mp::obs::waste_json(mp::smr::kUnboundedWaste, 42);
  EXPECT_FALSE(waste.find("bounded")->as_bool());
  EXPECT_TRUE(waste.find("bound")->is_null());
  EXPECT_TRUE(waste.find("within_bound")->is_null());
  const json::Value bounded = mp::obs::waste_json(100, 42);
  EXPECT_TRUE(bounded.find("bounded")->as_bool());
  EXPECT_EQ(bounded.find("bound")->as_uint(), 100u);
  EXPECT_TRUE(bounded.find("within_bound")->as_bool());
}

TEST(ReportTest, WriteEmitsParseableFile) {
  const std::string path = ::testing::TempDir() + "report_write_test.json";
  {
    BenchReport report("unit_test", path);
    json::Value row = json::Value::object();
    row["figure"] = "fig0";
    row["scheme"] = "HP";
    report.add_row(std::move(row));
    EXPECT_TRUE(report.write());
  }  // destructor write is idempotent
  const json::Value doc = json::parse(slurp(path));
  EXPECT_EQ(validate_report(doc), "");
  EXPECT_EQ(doc.find("bench")->as_string(), "unit_test");
  std::remove(path.c_str());
}

#ifdef MARGINPTR_FIG5_BIN
// Golden-file check: a real bench binary, tiny parameters, validated JSON.
TEST(ReportTest, GoldenFig5ReportValidates) {
  const std::string path = ::testing::TempDir() + "golden_fig5.json";
  const std::string command = std::string(MARGINPTR_FIG5_BIN) +
                              " --size=64 --duration-ms=20 --threads=2"
                              " --schemes=MP,HP --json-out=" +
                              path + " > /dev/null";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "bench did not write " << path;
  const json::Value doc = json::parse(text);
  EXPECT_EQ(validate_report(doc), "");
  EXPECT_EQ(doc.find("bench")->as_string(), "fig5_fences");
  // fig5 runs 3 structures x 2 schemes.
  const auto& rows = doc.find("rows")->as_array();
  EXPECT_EQ(rows.size(), 6u);
  for (const json::Value& row : rows) {
    EXPECT_EQ(row.find("figure")->as_string(), "fig5");
    ASSERT_NE(row.find("latency_ns"), nullptr);
    const json::Value* contains = row.find("latency_ns")->find("contains");
    ASSERT_NE(contains, nullptr);
    EXPECT_GT(contains->find("count")->as_uint(), 0u)
        << "read-only workload must record contains latencies";
  }
}
#endif  // MARGINPTR_FIG5_BIN

}  // namespace
