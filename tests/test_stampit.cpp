// Stamp-it (stamp-ordered thread list, O(1) promote-on-leave): the
// scheme-specific behavior the typed cross-scheme suites cannot pin down.
//
//   * horizon semantics — an active operation pins the horizon at its
//     stamp (nothing retired after it is freed), and promote-on-leave
//     releases the backlog the moment the oldest operation ends;
//   * DEBRA amortization — a thread re-enrolls (and bumps the global
//     stamp counter) only every kAnnounceFreq operations while another
//     thread holds the list head;
//   * detach — a departed tid's retired list is orphaned and the
//     allocation identity still closes after adoption/drain;
//   * conservation (retires == reclaims + drained) in both the foreground
//     and background arms;
//   * chaos + churn mini-tortures (the latter with injected thread
//     deaths) through a real structure, oracle-clean, with the
//     waste/in-flight watchdog invariants holding.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <new>
#include <thread>
#include <vector>

#include "common/thread_registry.hpp"
#include "ds/michael_list.hpp"
#include "ds_test_util.hpp"
#include "test_util.hpp"

namespace {

using mp::common::ThreadLease;
using mp::common::ThreadRegistry;
using mp::smr::ChaosOptions;
using mp::smr::Config;
using mp::smr::FaultInjector;
using mp::smr::WasteWatchdog;
using mp::test::TestNode;

using Scheme = mp::smr::Stampit<TestNode>;

static_assert(mp::smr::SmrScheme<Scheme>);
static_assert(!Scheme::kSnapshotFree);
static_assert(mp::smr::SnapshotReclaimable<Scheme>);

// ---- Horizon semantics ----

TEST(StampitHorizon, ActiveOperationPinsRetiredNodes) {
  Config config = mp::test::ds_config(2, 2, 8);
  Scheme scheme(config);
  // Tid 0 enrolls and stays mid-operation: the horizon is its stamp, so
  // everything retired from now on carries a stamp >= horizon and must
  // survive tid 1's empty() passes.
  scheme.start_op(0);
  for (int i = 0; i < 8; ++i) {
    scheme.retire(1, scheme.alloc(1, static_cast<std::uint64_t>(i)));
  }
  EXPECT_GT(scheme.stats_snapshot().empties, 0u);
  EXPECT_EQ(scheme.stats_snapshot().reclaims, 0u)
      << "an active operation must pin every later retire";
  // Promote-on-leave: tid 0 was the list head, so its end_op pops the
  // quiescent run and publishes a horizon past every stamp issued so far;
  // the next empty() frees the whole backlog.
  scheme.end_op(0);
  for (int i = 0; i < 8; ++i) {
    scheme.retire(1, scheme.alloc(1, static_cast<std::uint64_t>(100 + i)));
  }
  EXPECT_EQ(scheme.stats_snapshot().reclaims, 16u)
      << "promote-on-leave must release the pinned backlog";
  scheme.drain();
  EXPECT_EQ(scheme.outstanding(), 0u);
}

TEST(StampitHorizon, SnapshotProtectsByRetireStamp) {
  Config config = mp::test::ds_config(2, 2, 8);
  Scheme scheme(config);
  Scheme::Snapshot snapshot;
  scheme.collect_snapshot(snapshot);
  TestNode* node = scheme.alloc(0, 7);
  node->smr_header.retire_epoch.store(snapshot.horizon,
                                      std::memory_order_relaxed);
  EXPECT_TRUE(scheme.snapshot_protects(node, snapshot));
  node->smr_header.retire_epoch.store(snapshot.horizon - 1,
                                      std::memory_order_relaxed);
  EXPECT_FALSE(scheme.snapshot_protects(node, snapshot));
  scheme.delete_unlinked(0, node);
}

// ---- DEBRA amortization ----

TEST(StampitAnnounce, ReenrollsOnlyEveryAnnounceFreqOps) {
  Config config = mp::test::ds_config(2, 2, 8);
  Scheme scheme(config);
  // Tid 0 holds the head so tid 1's end_op never pops its own entry; the
  // fast path then reactivates in place without touching the counter.
  scheme.start_op(0);
  scheme.start_op(1);  // first op: enrollment (+1 stamp)
  scheme.end_op(1);
  const std::uint64_t before = scheme.epoch_now();
  const int ops = static_cast<int>(Scheme::kAnnounceFreq) * 3;
  for (int i = 0; i < ops; ++i) {
    scheme.start_op(1);
    scheme.end_op(1);
  }
  EXPECT_EQ(scheme.epoch_now() - before, 3u)
      << "only every kAnnounceFreq-th op may take the enrollment slow path";
  scheme.end_op(0);
  scheme.drain();
}

// ---- Detach: orphaning and adoption ----

TEST(StampitDetach, OrphansRetiredListAndDrainCloses) {
  Config config = mp::test::ds_config(2, 2, 64);
  Scheme scheme(config);
  // A large empty_freq keeps the nodes buffered on tid 0's retired list,
  // so its detach must hand them to the orphan pool.
  for (int i = 0; i < 16; ++i) {
    scheme.retire(0, scheme.alloc(0, static_cast<std::uint64_t>(i)));
  }
  scheme.detach(0);
  const auto mid = scheme.stats_snapshot();
  EXPECT_EQ(mid.orphaned, 16u);
  EXPECT_EQ(scheme.orphan_count() + mid.adopted, 16u);
  scheme.drain();
  EXPECT_EQ(scheme.orphan_count(), 0u);
  const auto stats = scheme.stats_snapshot();
  EXPECT_EQ(stats.retires, stats.reclaims + stats.drained);
  EXPECT_EQ(scheme.outstanding(), 0u);
}

// ---- Conservation ----

TEST(StampitConservation, ForegroundStormConservesEveryNode) {
  Config config = mp::test::ds_config(2, 2, 8);
  mp::test::OracleAttachment oracle;
  oracle.attach(config);
  Scheme scheme(config);
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&scheme, t] {
      for (int i = 0; i < 3000; ++i) {
        scheme.start_op(t);
        scheme.retire(t, scheme.alloc(t, static_cast<std::uint64_t>(i)));
        scheme.end_op(t);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  scheme.drain();
  const auto stats = scheme.stats_snapshot();
  EXPECT_EQ(stats.retires, stats.reclaims + stats.drained);
  EXPECT_EQ(scheme.outstanding(), 0u);
  oracle.expect_clean();
}

TEST(StampitConservation, BackgroundStormConservesEveryNode) {
  Config config = mp::test::ds_config(2, 2, 8);
  config.background_reclaim = true;
  mp::test::OracleAttachment oracle;
  oracle.attach(config);
  Scheme scheme(config);
  WasteWatchdog<Scheme> watchdog(scheme);
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&scheme, t] {
      for (int i = 0; i < 3000; ++i) {
        scheme.start_op(t);
        scheme.retire(t, scheme.alloc(t, static_cast<std::uint64_t>(i)));
        scheme.end_op(t);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  scheme.drain();
  EXPECT_EQ(scheme.reclaim_inflight(), 0u);
  const auto stats = scheme.stats_snapshot();
  EXPECT_GT(stats.offloaded, 0u) << "the bg arm must actually offload";
  EXPECT_EQ(stats.retires, stats.reclaims + stats.drained);
  EXPECT_EQ(scheme.outstanding(), 0u);
  EXPECT_TRUE(watchdog.inflight_ok());
  oracle.expect_clean();
}

// ---- Chaos torture through a real structure ----

ChaosOptions stampit_chaos_options(std::uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  options.stall_period = 257;
  options.stall_iterations = 8;
  options.alloc_failure_period = 211;
  options.alloc_failure_burst = 3;
  options.delay_reclamation_period = 13;
  options.epoch_storm_period = 131;
  options.epoch_storm_burst = 5;
  options.collision_period = 29;
  return options;
}

void stampit_survive_torture(std::uint64_t seed, bool background_reclaim) {
  using List = mp::ds::MichaelList<mp::smr::Stampit>;
  const int threads = 4;
  FaultInjector injector(stampit_chaos_options(seed),
                         static_cast<std::size_t>(threads));
  injector.set_armed(false);
  Config config = mp::test::ds_config(threads, List::kRequiredSlots, 8);
  config.background_reclaim = background_reclaim;
  config.fault_injector = &injector;
  mp::test::OracleAttachment oracle;
  oracle.attach(config);
  List list(config);
  WasteWatchdog<List::Scheme> watchdog(list.scheme());
  std::uint64_t prefill = 0;
  {
    const auto handle = list.scheme().handle(0);
    for (std::uint64_t key = 2; key <= 256; key += 2) {
      prefill += list.insert(handle, key, key);
    }
  }
  injector.set_armed(true);
  std::atomic<std::uint64_t> inserts{0}, removes{0}, ooms{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      mp::common::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
      const auto handle = list.scheme().handle(t);
      std::uint64_t local_inserts = 0, local_removes = 0, local_ooms = 0;
      for (int i = 0; i < 4000; ++i) {
        const std::uint64_t key = 1 + rng.next_below(256);
        const auto coin = static_cast<int>(rng.next() % 100);
        try {
          if (coin < 45) {
            local_inserts += list.insert(handle, key, key);
          } else if (coin < 80) {
            local_removes += list.remove(handle, key);
          } else {
            list.contains(handle, key);
          }
        } catch (const std::bad_alloc&) {
          ++local_ooms;
        }
      }
      inserts.fetch_add(local_inserts);
      removes.fetch_add(local_removes);
      ooms.fetch_add(local_ooms);
    });
  }
  for (auto& worker : workers) worker.join();
  injector.set_armed(false);
  EXPECT_TRUE(list.validate());
  EXPECT_EQ(list.size(), prefill + inserts.load() - removes.load());
  EXPECT_GT(ooms.load(), 0u) << "injected OOM episodes must reach clients";
  EXPECT_TRUE(watchdog.ok());
  EXPECT_TRUE(watchdog.inflight_ok());
  list.scheme().drain();
  const auto stats = list.scheme().stats_snapshot();
  EXPECT_EQ(stats.retires, stats.reclaims + stats.drained);
  oracle.expect_clean();
}

TEST(StampitTorture, SurvivesChaosMixForeground) {
  stampit_survive_torture(0x61, /*background_reclaim=*/false);
}

TEST(StampitTorture, SurvivesChaosMixBackground) {
  stampit_survive_torture(0x62, /*background_reclaim=*/true);
}

// ---- Churn torture: injected thread deaths, orphaning, adoption ----

void stampit_survive_churn(std::uint64_t seed, bool background_reclaim) {
  using List = mp::ds::MichaelList<mp::smr::Stampit>;
  const int threads = 4;
  ChaosOptions options = stampit_chaos_options(seed);
  options.thread_death_period = 401;
  FaultInjector injector(options, static_cast<std::size_t>(threads));
  injector.set_armed(false);
  Config config = mp::test::ds_config(threads, List::kRequiredSlots, 8);
  config.background_reclaim = background_reclaim;
  config.fault_injector = &injector;
  mp::test::OracleAttachment oracle;
  oracle.attach(config);
  List list(config);
  // Leases detach through the registry hook: the departed tid's entry
  // leaves the stamp list (so its stale stamp cannot hold the horizon
  // back) and its retired list is orphaned for adoption.
  ThreadRegistry registry(static_cast<std::size_t>(threads));
  registry.set_detach_hook(
      [](void* context, int tid) {
        static_cast<List::Scheme*>(context)->detach(tid);
      },
      &list.scheme());
  std::uint64_t prefill = 0;
  {
    ThreadLease lease(registry);
    const auto handle = list.scheme().handle(lease.tid());
    for (std::uint64_t key = 2; key <= 256; key += 2) {
      prefill += list.insert(handle, key, key);
    }
  }
  injector.set_armed(true);
  std::atomic<std::uint64_t> inserts{0}, removes{0}, departures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      mp::common::Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
      std::uint64_t local_inserts = 0, local_removes = 0;
      std::uint64_t local_departures = 0;
      ThreadLease lease(registry);
      auto handle = list.scheme().handle(lease.tid());
      for (int i = 0; i < 4000; ++i) {
        const std::uint64_t key = 1 + rng.next_below(256);
        const auto coin = static_cast<int>(rng.next() % 100);
        try {
          if (coin < 45) {
            local_inserts += list.insert(handle, key, key);
          } else if (coin < 80) {
            local_removes += list.remove(handle, key);
          } else {
            list.contains(handle, key);
          }
        } catch (const std::bad_alloc&) {
          // Injected OOM: the op simply did not happen.
        }
        if (injector.should_die(handle.tid())) {
          lease.detach();
          lease = ThreadLease(registry);
          handle = list.scheme().handle(lease.tid());
          ++local_departures;
        }
      }
      inserts.fetch_add(local_inserts);
      removes.fetch_add(local_removes);
      departures.fetch_add(local_departures);
    });
  }
  for (auto& worker : workers) worker.join();
  injector.set_armed(false);
  EXPECT_TRUE(list.validate());
  EXPECT_EQ(list.size(), prefill + inserts.load() - removes.load());
  EXPECT_GT(departures.load(), 0u) << "injected deaths must really fire";
  EXPECT_EQ(departures.load(), injector.total().thread_deaths);
  list.scheme().drain();
  EXPECT_EQ(list.scheme().orphan_count(), 0u);
  const auto stats = list.scheme().stats_snapshot();
  EXPECT_GT(stats.orphaned, 0u)
      << "dead leases must orphan their retired lists";
  EXPECT_GE(stats.orphaned, stats.adopted);
  EXPECT_EQ(stats.retires, stats.reclaims + stats.drained);
  oracle.expect_clean();
}

TEST(StampitChurn, SurvivesThreadDeathsForeground) {
  stampit_survive_churn(0x71, /*background_reclaim=*/false);
}

TEST(StampitChurn, SurvivesThreadDeathsBackground) {
  stampit_survive_churn(0x72, /*background_reclaim=*/true);
}

}  // namespace
