// Regression tests for the stats bugfixes in this PR:
//   * StatsSnapshot::operator- saturates at 0 instead of wrapping uint64
//     (debug builds additionally assert the prefix invariant);
//   * SchemeBase::drain() attributes frees to the scheme-wide `drained`
//     counter instead of bumping foreign threads' single-writer `reclaims`.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace {

using mp::smr::Config;
using mp::smr::StatsSnapshot;
using mp::test::TestNode;

StatsSnapshot make_snapshot(std::uint64_t value) {
  StatsSnapshot s;
  s.fences = value;
  s.reads = value;
  s.allocs = value;
  s.retires = value;
  s.reclaims = value;
  s.drained = value;
  s.empties = value;
  s.retired_sum = value;
  s.retired_samples = value;
  s.peak_retired = value;
  s.emergency_empties = value;
  s.pool_hits = value;
  s.pool_misses = value;
  s.depot_exchanges = value;
  s.unlinked_frees = value;
  return s;
}

TEST(StatsSnapshotTest, DeltaOfPrefixIsExact) {
  const StatsSnapshot later = make_snapshot(10);
  const StatsSnapshot earlier = make_snapshot(4);
  const StatsSnapshot delta = later - earlier;
  EXPECT_EQ(delta.fences, 6u);
  EXPECT_EQ(delta.reads, 6u);
  EXPECT_EQ(delta.retires, 6u);
  EXPECT_EQ(delta.reclaims, 6u);
  EXPECT_EQ(delta.drained, 6u);
  EXPECT_EQ(delta.pool_hits, 6u);
  EXPECT_EQ(delta.pool_misses, 6u);
  EXPECT_EQ(delta.depot_exchanges, 6u);
  EXPECT_EQ(delta.unlinked_frees, 6u);
  // High-water marks are not differentiable: the delta keeps the lhs peak.
  EXPECT_EQ(delta.peak_retired, 10u);
}

#ifdef NDEBUG
TEST(StatsSnapshotTest, NonPrefixDeltaSaturatesAtZero) {
  // The regression: subtracting a *later* snapshot from an earlier one
  // used to wrap to ~2^64. Release builds must saturate at 0.
  const StatsSnapshot earlier = make_snapshot(3);
  const StatsSnapshot later = make_snapshot(7);
  const StatsSnapshot delta = earlier - later;
  EXPECT_EQ(delta.fences, 0u);
  EXPECT_EQ(delta.reads, 0u);
  EXPECT_EQ(delta.retires, 0u);
  EXPECT_EQ(delta.reclaims, 0u);
  EXPECT_EQ(delta.drained, 0u);
  EXPECT_EQ(delta.emergency_empties, 0u);
  EXPECT_EQ(delta.pool_hits, 0u);
  EXPECT_EQ(delta.unlinked_frees, 0u);
}
#else
TEST(StatsSnapshotDeathTest, NonPrefixDeltaAssertsInDebug) {
  const StatsSnapshot earlier = make_snapshot(3);
  const StatsSnapshot later = make_snapshot(7);
  EXPECT_DEATH((void)(earlier - later), "not a prefix");
}
#endif

TEST(StatsSnapshotTest, AccumulateSumsCountersAndMaxMergesPeak) {
  StatsSnapshot sum = make_snapshot(5);
  StatsSnapshot more = make_snapshot(2);
  more.peak_retired = 9;
  sum += more;
  EXPECT_EQ(sum.retires, 7u);
  EXPECT_EQ(sum.drained, 7u);
  EXPECT_EQ(sum.peak_retired, 9u);  // max-merged, not summed
}

/// Body of the drain-attribution check, run once per pool arm: the
/// allocation identities must hold identically whether frees recycle
/// through the pool or return to the system allocator.
void drain_attribution_check(bool pool_enabled) {
  Config config;
  config.max_threads = 3;
  config.slots_per_thread = 4;
  config.empty_freq = 1 << 20;  // no scheduled empty(): everything buffers
  config.pool_enabled = pool_enabled;
  mp::smr::EBR<TestNode> scheme(config);

  constexpr int kPerThread = 8;
  for (int tid = 0; tid < 3; ++tid) {
    for (int i = 0; i < kPerThread; ++i) {
      scheme.retire(tid, scheme.alloc(tid, std::uint64_t(i)));
    }
  }
  const StatsSnapshot before = scheme.stats_snapshot();
  EXPECT_EQ(before.retires, 3u * kPerThread);
  EXPECT_EQ(before.reclaims, 0u);
  EXPECT_EQ(before.drained, 0u);

  scheme.drain();

  const StatsSnapshot after = scheme.stats_snapshot();
  // The regression: drain() used to bump `reclaims` on ThreadStats records
  // it does not own. Drained frees must land on the dedicated counter.
  EXPECT_EQ(after.reclaims, 0u);
  EXPECT_EQ(after.drained, 3u * kPerThread);
  EXPECT_EQ(scheme.total_drained(), 3u * kPerThread);
  EXPECT_EQ(scheme.total_freed(), scheme.total_allocated());
  EXPECT_EQ(scheme.outstanding(), 0u);
  // Conservation: every retired node is accounted exactly once.
  EXPECT_EQ(after.retires, after.reclaims + after.drained);
}

TEST(DrainAttributionTest, DrainDoesNotTouchPerThreadReclaims) {
  drain_attribution_check(/*pool_enabled=*/true);
}

TEST(DrainAttributionTest, IdentitiesHoldWithPoolOff) {
  drain_attribution_check(/*pool_enabled=*/false);
}

TEST(DrainAttributionTest, DrainIsIdempotent) {
  Config config;
  config.max_threads = 2;
  config.slots_per_thread = 4;
  config.empty_freq = 1 << 20;
  mp::smr::HP<TestNode> scheme(config);
  scheme.retire(0, scheme.alloc(0, std::uint64_t{1}));
  scheme.drain();
  scheme.drain();
  EXPECT_EQ(scheme.total_drained(), 1u);
}

}  // namespace
